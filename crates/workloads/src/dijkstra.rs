//! The `dijkstra` kernel (MiBench), the paper's motivating example
//! (Figure 2).
//!
//! The hot outer loop runs a work-list shortest-path relaxation from every
//! source vertex. Two data structures are *reused* across iterations:
//!
//! * `Q` — a global linked-list work queue (head/tail pointers to
//!   malloc'd nodes);
//! * `pathcost` — the global cost table, re-initialized per source.
//!
//! The reuse creates false dependences on every pair of iterations; the
//! queue's head/tail additionally carry a *flow* dependence whose value is
//! always NULL at iteration boundaries — removed by value-prediction
//! speculation, exactly as in §6.1. List nodes are short-lived; `adj` is
//! read-only; each iteration prints one result line (deferred I/O).

use crate::util::{for_loop, if_then, if_then_else, Xorshift};
use privateer_ir::builder::FunctionBuilder;
use privateer_ir::{CmpOp, FuncId, GlobalInit, Module, Type, Value};

/// Offsets within the `Q` global.
const Q_HEAD: i64 = 0;
const Q_TAIL: i64 = 8;
/// Offsets within a list node.
const NODE_VX: i64 = 0;
const NODE_NEXT: i64 = 8;
const INF: i64 = i64::MAX / 4;

/// Kernel parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Number of vertices (and outer-loop iterations).
    pub n: usize,
    /// Input seed.
    pub seed: u64,
}

impl Params {
    /// The paper's "train" input scale.
    pub fn train() -> Params {
        Params { n: 24, seed: 11 }
    }

    /// The paper's "ref" input scale.
    pub fn reference() -> Params {
        Params { n: 48, seed: 12 }
    }
}

fn adjacency(p: &Params) -> Vec<i64> {
    let mut rng = Xorshift(p.seed);
    let n = p.n;
    let mut adj = vec![0i64; n * n];
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.below(100) < 35 {
                adj[i * n + j] = 1 + rng.below(10) as i64;
            }
        }
    }
    adj
}

/// Build the IR program.
pub fn build(p: &Params) -> Module {
    let n = p.n as i64;
    let mut m = Module::new("dijkstra");
    let q = m.add_global("Q", 16);
    let pathcost = m.add_global("pathcost", (p.n * 8) as u64);
    let adj = m.add_global_init(
        "adj",
        (p.n * p.n * 8) as u64,
        GlobalInit::I64s(adjacency(p)),
    );

    // fn enqueue(v): node = malloc(16); node.vx = v; node.next = NULL;
    //               if Q.tail { Q.tail.next = node } else { Q.head = node }
    //               Q.tail = node
    let enqueue_id = FuncId::new(0);
    {
        let mut b = FunctionBuilder::new("enqueue", vec![Type::I64], None);
        let v = b.param(0);
        let node = b.malloc(Value::const_i64(16));
        let vx = b.gep_const(node, NODE_VX);
        b.store(Type::I64, v, vx);
        let nx = b.gep_const(node, NODE_NEXT);
        b.store(Type::Ptr, Value::Null, nx);
        let tail_p = b.gep_const(Value::Global(q), Q_TAIL);
        let tail = b.load(Type::Ptr, tail_p);
        let has_tail = b.icmp(CmpOp::Ne, tail, Value::Null);
        if_then_else(
            &mut b,
            has_tail,
            |b| {
                let tnext = b.gep_const(tail, NODE_NEXT);
                b.store(Type::Ptr, node, tnext);
            },
            |b| {
                let head_p = b.gep_const(Value::Global(q), Q_HEAD);
                b.store(Type::Ptr, node, head_p);
            },
        );
        let tail_p2 = b.gep_const(Value::Global(q), Q_TAIL);
        b.store(Type::Ptr, node, tail_p2);
        b.ret(None);
        m.add_function(b.finish());
    }

    // fn dequeue() -> i64: k = Q.head; v = k.vx; Q.head = k.next;
    //                      if Q.head == NULL { Q.tail = NULL }; free(k); v
    let dequeue_id = FuncId::new(1);
    {
        let mut b = FunctionBuilder::new("dequeue", vec![], Some(Type::I64));
        let head_p = b.gep_const(Value::Global(q), Q_HEAD);
        let k = b.load(Type::Ptr, head_p);
        let vx = b.gep_const(k, NODE_VX);
        let v = b.load(Type::I64, vx);
        let nx = b.gep_const(k, NODE_NEXT);
        let next = b.load(Type::Ptr, nx);
        let head_p2 = b.gep_const(Value::Global(q), Q_HEAD);
        b.store(Type::Ptr, next, head_p2);
        let empty = b.icmp(CmpOp::Eq, next, Value::Null);
        if_then(&mut b, empty, |b| {
            let tail_p = b.gep_const(Value::Global(q), Q_TAIL);
            b.store(Type::Ptr, Value::Null, tail_p);
        });
        b.free(k);
        b.ret(Some(v));
        m.add_function(b.finish());
    }

    // fn main: hot loop over sources.
    {
        let mut b = FunctionBuilder::new("main", vec![], None);
        for_loop(
            &mut b,
            Value::const_i64(0),
            Value::const_i64(n),
            |b, src| {
                // pathcost[i] = INF for all i; pathcost[src] = 0.
                for_loop(b, Value::const_i64(0), Value::const_i64(n), |b, i| {
                    let slot = b.gep(Value::Global(pathcost), i, 8, 0);
                    b.store(Type::I64, Value::const_i64(INF), slot);
                });
                let sslot = b.gep(Value::Global(pathcost), src, 8, 0);
                b.store(Type::I64, Value::const_i64(0), sslot);
                b.call(enqueue_id, vec![src], None);

                // while Q.head != NULL { relax }
                let while_pre = b.current_block();
                let wh = b.new_block();
                let wbody = b.new_block();
                let wexit = b.new_block();
                let _ = while_pre;
                b.br(wh);
                b.switch_to(wh);
                let head_p = b.gep_const(Value::Global(q), Q_HEAD);
                let head = b.load(Type::Ptr, head_p);
                let nonempty = b.icmp(CmpOp::Ne, head, Value::Null);
                b.cond_br(nonempty, wbody, wexit);
                b.switch_to(wbody);
                let v = b.call(dequeue_id, vec![], Some(Type::I64)).unwrap();
                let dslot = b.gep(Value::Global(pathcost), v, 8, 0);
                let d = b.load(Type::I64, dslot);
                for_loop(b, Value::const_i64(0), Value::const_i64(n), |b, i| {
                    let row = b.mul(Type::I64, v, Value::const_i64(n));
                    let idx = b.add(Type::I64, row, i);
                    let wslot = b.gep(Value::Global(adj), idx, 8, 0);
                    let w = b.load(Type::I64, wslot);
                    let has_edge = b.icmp(CmpOp::Ne, w, Value::const_i64(0));
                    if_then(b, has_edge, |b| {
                        let ncost = b.add(Type::I64, d, w);
                        let islot = b.gep(Value::Global(pathcost), i, 8, 0);
                        let cur = b.load(Type::I64, islot);
                        let better = b.icmp(CmpOp::Gt, cur, ncost);
                        if_then(b, better, |b| {
                            let islot2 = b.gep(Value::Global(pathcost), i, 8, 0);
                            b.store(Type::I64, ncost, islot2);
                            b.call(FuncId::new(0), vec![i], None);
                        });
                    });
                });
                b.br(wh);
                b.switch_to(wexit);

                // Print pathcost[(src + n/2) % n].
                let half = b.add(Type::I64, src, Value::const_i64(n / 2));
                let dest = b.bin(
                    privateer_ir::BinOp::SRem,
                    Type::I64,
                    half,
                    Value::const_i64(n),
                );
                let oslot = b.gep(Value::Global(pathcost), dest, 8, 0);
                let out = b.load(Type::I64, oslot);
                b.print_i64(out);
            },
        );
        b.ret(None);
        m.add_function(b.finish());
    }
    privateer_ir::verify::verify_module(&m).expect("dijkstra module is well-formed");
    m
}

/// The expected program output, computed natively.
pub fn reference_output(p: &Params) -> Vec<u8> {
    let n = p.n;
    let adj = adjacency(p);
    let mut out = Vec::new();
    for src in 0..n {
        let mut cost = vec![INF; n];
        cost[src] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            let d = cost[v];
            for i in 0..n {
                let w = adj[v * n + i];
                if w != 0 && cost[i] > d + w {
                    cost[i] = d + w;
                    queue.push_back(i);
                }
            }
        }
        let dest = (src + n / 2) % n;
        out.extend(format!("{}\n", cost[dest]).into_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use privateer_vm::{load_module, BasicRuntime, Interp, NopHooks};

    #[test]
    fn sequential_matches_reference() {
        let p = Params { n: 12, seed: 3 };
        let m = build(&p);
        let image = load_module(&m);
        let mut interp = Interp::new(&m, &image, NopHooks, BasicRuntime::strict());
        interp.run_main().unwrap();
        assert_eq!(interp.rt.take_output(), reference_output(&p));
    }

    #[test]
    fn train_and_ref_differ() {
        assert_ne!(
            reference_output(&Params::train()),
            reference_output(&Params::reference())
        );
    }
}
