#![warn(missing_docs)]
//! # privateer-workloads
//!
//! The five programs of the paper's evaluation (§6, Table 3), rebuilt as
//! IR kernels that reproduce each program's *memory behaviour* — which
//! structures are reused across iterations, which are short-lived, which
//! need value prediction, reductions or I/O deferral:
//!
//! | module | models | key structures |
//! |--------|--------|----------------|
//! | [`dijkstra`] | MiBench dijkstra | linked work queue + cost table |
//! | [`blackscholes`] | PARSEC blackscholes | malloc'd pricing array |
//! | [`swaptions`] | PARSEC swaptions | short-lived linked matrices |
//! | [`alvinn`] | SPEC 052.alvinn | stack arrays + array reductions |
//! | [`md5`] | Trimaran enc-md5 | digest state + per-message buffers |
//!
//! Each module exposes `Params`, `build(&Params) -> Module` and
//! `reference_output(&Params) -> Vec<u8>` (a native Rust oracle).

pub mod alvinn;
pub mod blackscholes;
pub mod dijkstra;
pub mod md5;
pub mod swaptions;
pub mod util;
