//! The `enc-md5` kernel (Trimaran): MD5 digests of a stream of messages.
//!
//! The hot loop digests one message per iteration: the four-word digest
//! *state object* is a reused global (privatized), the padded message
//! buffer is malloc'd and freed within the iteration (short-lived), the
//! round-constant and shift tables are read-only, and every digest is
//! printed (deferred I/O committed in order). A never-taken oversize
//! branch exercises control speculation — matching Table 3's
//! "Control, I/O" extras for enc-md5.

use crate::util::{for_loop, if_then, Xorshift};
use privateer_ir::builder::FunctionBuilder;
use privateer_ir::{BinOp, CmpOp, GlobalInit, Module, Type, Value};

/// Kernel parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Number of messages (hot-loop iterations).
    pub messages: usize,
    /// Bytes per message.
    pub msg_len: usize,
    /// Input seed.
    pub seed: u64,
}

impl Params {
    /// Train scale.
    pub fn train() -> Params {
        Params {
            messages: 40,
            msg_len: 120,
            seed: 41,
        }
    }

    /// Ref scale.
    pub fn reference() -> Params {
        Params {
            messages: 80,
            msg_len: 200,
            seed: 42,
        }
    }
}

/// Padded length: message + 0x80 + zeros + 8-byte bit length, rounded to
/// 64.
fn padded_len(msg_len: usize) -> usize {
    (msg_len + 9).div_ceil(64) * 64
}

/// RFC 1321 round constants.
fn k_table() -> Vec<i64> {
    (0..64)
        .map(|i| (((i as f64 + 1.0).sin().abs() * 4294967296.0) as u32) as i64)
        .collect()
}

/// RFC 1321 per-round rotate amounts.
fn s_table() -> Vec<i64> {
    const S: [i64; 16] = [7, 12, 17, 22, 5, 9, 14, 20, 4, 11, 16, 23, 6, 10, 15, 21];
    (0..64).map(|r| S[(r / 16) * 4 + (r % 4)]).collect()
}

fn message_bytes(p: &Params) -> Vec<u8> {
    let mut rng = Xorshift(p.seed);
    (0..p.messages * p.msg_len)
        .map(|_| rng.below(256) as u8)
        .collect()
}

const M32: i64 = 0xFFFF_FFFF;
const INIT: [i64; 4] = [
    0x6745_2301,
    0xefcd_ab89u32 as i64,
    0x98ba_dcfeu32 as i64,
    0x1032_5476,
];

/// Build the IR program.
#[allow(clippy::too_many_lines)]
pub fn build(p: &Params) -> Module {
    let nmsg = p.messages as i64;
    let mlen = p.msg_len as i64;
    let plen = padded_len(p.msg_len) as i64;
    let mut m = Module::new("enc-md5");

    let g_msgs = m.add_global_init(
        "messages",
        (p.messages * p.msg_len) as u64,
        GlobalInit::Bytes(message_bytes(p)),
    );
    let g_k = m.add_global_init("K", 64 * 8, GlobalInit::I64s(k_table()));
    let g_s = m.add_global_init("S", 64 * 8, GlobalInit::I64s(s_table()));
    let g_state = m.add_global("state", 32);

    let mut b = FunctionBuilder::new("main", vec![], None);
    for_loop(
        &mut b,
        Value::const_i64(0),
        Value::const_i64(nmsg),
        |b, msg| {
            // Control-speculation bait: impossible oversize path.
            let too_big = b.icmp(CmpOp::Gt, Value::const_i64(mlen), Value::const_i64(1 << 40));
            if_then(b, too_big, |b| {
                b.print_i64(Value::const_i64(-1));
            });

            // state = INIT (kill: the reused object is overwritten first).
            for (w, init) in INIT.iter().enumerate() {
                let slot = b.gep_const(Value::Global(g_state), (w * 8) as i64);
                b.store(Type::I64, Value::const_i64(*init), slot);
            }

            // Short-lived padded buffer.
            let buf = b.malloc(Value::const_i64(plen));
            let src_base = b.mul(Type::I64, msg, Value::const_i64(mlen));
            for_loop(b, Value::const_i64(0), Value::const_i64(mlen), |b, i| {
                let si = b.add(Type::I64, src_base, i);
                let sslot = b.gep(Value::Global(g_msgs), si, 1, 0);
                let byte = b.load(Type::I8, sslot);
                let dslot = b.gep(buf, i, 1, 0);
                b.store(Type::I8, byte, dslot);
            });
            let pad = b.gep(buf, Value::const_i64(mlen), 1, 0);
            b.store(Type::I8, Value::const_i8(-128), pad); // 0x80
            for_loop(
                b,
                Value::const_i64(mlen + 1),
                Value::const_i64(plen - 8),
                |b, i| {
                    let slot = b.gep(buf, i, 1, 0);
                    b.store(Type::I8, Value::const_i8(0), slot);
                },
            );
            let lenslot = b.gep(buf, Value::const_i64(plen - 8), 1, 0);
            b.store(Type::I64, Value::const_i64(mlen * 8), lenslot);

            // Per 64-byte block.
            for_loop(
                b,
                Value::const_i64(0),
                Value::const_i64(plen / 64),
                |b, blk| {
                    let block_base = b.mul(Type::I64, blk, Value::const_i64(64));
                    let lda = |b: &mut FunctionBuilder, w: usize| {
                        let slot = b.gep_const(Value::Global(g_state), (w * 8) as i64);
                        b.load(Type::I64, slot)
                    };
                    let a0 = lda(b, 0);
                    let b0 = lda(b, 1);
                    let c0 = lda(b, 2);
                    let d0 = lda(b, 3);

                    // Round loop with five loop-carried SSA values.
                    let entry = b.current_block();
                    let header = b.new_block();
                    let body_bb = b.new_block();
                    let exit = b.new_block();
                    b.br(header);
                    b.switch_to(header);
                    let (r, r_phi) = b.phi(Type::I64);
                    let (a, a_phi) = b.phi(Type::I64);
                    let (bb_, b_phi) = b.phi(Type::I64);
                    let (c, c_phi) = b.phi(Type::I64);
                    let (d, d_phi) = b.phi(Type::I64);
                    b.add_phi_incoming(r_phi, entry, Value::const_i64(0));
                    b.add_phi_incoming(a_phi, entry, a0);
                    b.add_phi_incoming(b_phi, entry, b0);
                    b.add_phi_incoming(c_phi, entry, c0);
                    b.add_phi_incoming(d_phi, entry, d0);
                    let cont = b.icmp(CmpOp::Lt, r, Value::const_i64(64));
                    b.cond_br(cont, body_bb, exit);
                    b.switch_to(body_bb);

                    let not = |b: &mut FunctionBuilder, x: Value| {
                        b.bin(BinOp::Xor, Type::I64, x, Value::const_i64(M32))
                    };
                    let and = |b: &mut FunctionBuilder, x, y| b.bin(BinOp::And, Type::I64, x, y);
                    let or = |b: &mut FunctionBuilder, x, y| b.bin(BinOp::Or, Type::I64, x, y);
                    let xor = |b: &mut FunctionBuilder, x, y| b.bin(BinOp::Xor, Type::I64, x, y);
                    let m32 = |b: &mut FunctionBuilder, x| and(b, x, Value::const_i64(M32));

                    // f for the four round families.
                    let nb = not(b, bb_);
                    let bc = and(b, bb_, c);
                    let nbd = and(b, nb, d);
                    let f0 = or(b, bc, nbd);
                    let db = and(b, d, bb_);
                    let nd = not(b, d);
                    let ndc = and(b, nd, c);
                    let f1 = or(b, db, ndc);
                    let bxc = xor(b, bb_, c);
                    let f2 = xor(b, bxc, d);
                    let bnd = or(b, bb_, nd);
                    let f3 = xor(b, c, bnd);

                    // g for the four round families.
                    let g0 = b.bin(BinOp::SRem, Type::I64, r, Value::const_i64(16));
                    let r5 = b.mul(Type::I64, r, Value::const_i64(5));
                    let r5p1 = b.add(Type::I64, r5, Value::const_i64(1));
                    let g1 = b.bin(BinOp::SRem, Type::I64, r5p1, Value::const_i64(16));
                    let r3 = b.mul(Type::I64, r, Value::const_i64(3));
                    let r3p5 = b.add(Type::I64, r3, Value::const_i64(5));
                    let g2 = b.bin(BinOp::SRem, Type::I64, r3p5, Value::const_i64(16));
                    let r7 = b.mul(Type::I64, r, Value::const_i64(7));
                    let g3 = b.bin(BinOp::SRem, Type::I64, r7, Value::const_i64(16));

                    let lt16 = b.icmp(CmpOp::Lt, r, Value::const_i64(16));
                    let lt32 = b.icmp(CmpOp::Lt, r, Value::const_i64(32));
                    let lt48 = b.icmp(CmpOp::Lt, r, Value::const_i64(48));
                    let f23 = b.select(Type::I64, lt48, f2, f3);
                    let f123 = b.select(Type::I64, lt32, f1, f23);
                    let f = b.select(Type::I64, lt16, f0, f123);
                    let g23 = b.select(Type::I64, lt48, g2, g3);
                    let g123 = b.select(Type::I64, lt32, g1, g23);
                    let g = b.select(Type::I64, lt16, g0, g123);

                    // m = word g of this block (little-endian u32).
                    let g4 = b.mul(Type::I64, g, Value::const_i64(4));
                    let off = b.add(Type::I64, block_base, g4);
                    let mslot = b.gep(buf, off, 1, 0);
                    let mword_s = b.load(Type::I32, mslot);
                    let mword_w = b.sext(mword_s, Type::I64);
                    let mword = m32(b, mword_w);

                    let kslot = b.gep(Value::Global(g_k), r, 8, 0);
                    let k = b.load(Type::I64, kslot);
                    let sslot = b.gep(Value::Global(g_s), r, 8, 0);
                    let s = b.load(Type::I64, sslot);

                    // x = a + f + k + m (mod 2^32); b' = b + rotl32(x, s).
                    let af = b.add(Type::I64, a, f);
                    let afk = b.add(Type::I64, af, k);
                    let x0 = b.add(Type::I64, afk, mword);
                    let x = m32(b, x0);
                    let sh = b.bin(BinOp::Shl, Type::I64, x, s);
                    let shm = m32(b, sh);
                    let inv = b.sub(Type::I64, Value::const_i64(32), s);
                    let lo = b.bin(BinOp::LShr, Type::I64, x, inv);
                    let rot = or(b, shm, lo);
                    let bpx = b.add(Type::I64, bb_, rot);
                    let new_b = m32(b, bpx);

                    let r2 = b.add(Type::I64, r, Value::const_i64(1));
                    let latch = b.current_block();
                    b.add_phi_incoming(r_phi, latch, r2);
                    b.add_phi_incoming(a_phi, latch, d);
                    b.add_phi_incoming(b_phi, latch, new_b);
                    b.add_phi_incoming(c_phi, latch, bb_);
                    b.add_phi_incoming(d_phi, latch, c);
                    b.br(header);
                    b.switch_to(exit);

                    // state += (a, b, c, d) (mod 2^32).
                    for (w, v) in [(0usize, a), (1, bb_), (2, c), (3, d)] {
                        let slot = b.gep_const(Value::Global(g_state), (w * 8) as i64);
                        let cur = b.load(Type::I64, slot);
                        let sum = b.add(Type::I64, cur, v);
                        let sm = m32(b, sum);
                        b.store(Type::I64, sm, slot);
                    }
                },
            );
            b.free(buf);

            // Print the digest words.
            for w in 0..4usize {
                let slot = b.gep_const(Value::Global(g_state), (w * 8) as i64);
                let v = b.load(Type::I64, slot);
                b.print_i64(v);
            }
        },
    );
    b.ret(None);
    m.add_function(b.finish());
    privateer_ir::verify::verify_module(&m).expect("md5 module is well-formed");
    m
}

/// Native MD5 over one message, returning the four state words.
fn md5_words(msg: &[u8]) -> [u32; 4] {
    let k: Vec<u32> = k_table().iter().map(|&v| v as u32).collect();
    let s: Vec<u32> = s_table().iter().map(|&v| v as u32).collect();
    let mut padded = msg.to_vec();
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend(((msg.len() as u64) * 8).to_le_bytes());
    let mut state: [u32; 4] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];
    for block in padded.chunks(64) {
        let mut words = [0u32; 16];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u32::from_le_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
        }
        let (mut a, mut b, mut c, mut d) = (state[0], state[1], state[2], state[3]);
        for r in 0..64usize {
            let (f, g) = match r / 16 {
                0 => ((b & c) | (!b & d), r),
                1 => ((d & b) | (!d & c), (5 * r + 1) % 16),
                2 => (b ^ c ^ d, (3 * r + 5) % 16),
                _ => (c ^ (b | !d), (7 * r) % 16),
            };
            let x = a.wrapping_add(f).wrapping_add(k[r]).wrapping_add(words[g]);
            let nb = b.wrapping_add(x.rotate_left(s[r]));
            a = d;
            d = c;
            c = b;
            b = nb;
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
    }
    state
}

/// The expected output, computed natively.
pub fn reference_output(p: &Params) -> Vec<u8> {
    let data = message_bytes(p);
    let mut out = Vec::new();
    for m in 0..p.messages {
        let msg = &data[m * p.msg_len..(m + 1) * p.msg_len];
        for w in md5_words(msg) {
            out.extend(format!("{w}\n").into_bytes());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use privateer_vm::{load_module, BasicRuntime, Interp, NopHooks};

    #[test]
    fn native_md5_matches_rfc1321_vectors() {
        // md5("") = d41d8cd98f00b204e9800998ecf8427e
        let w = md5_words(b"");
        let hex: String = w
            .iter()
            .flat_map(|x| x.to_le_bytes())
            .map(|b| format!("{b:02x}"))
            .collect();
        assert_eq!(hex, "d41d8cd98f00b204e9800998ecf8427e");
        // md5("abc") = 900150983cd24fb0d6963f7d28e17f72
        let w = md5_words(b"abc");
        let hex: String = w
            .iter()
            .flat_map(|x| x.to_le_bytes())
            .map(|b| format!("{b:02x}"))
            .collect();
        assert_eq!(hex, "900150983cd24fb0d6963f7d28e17f72");
    }

    #[test]
    fn sequential_matches_reference() {
        let p = Params {
            messages: 6,
            msg_len: 75,
            seed: 9,
        };
        let m = build(&p);
        let image = load_module(&m);
        let mut interp = Interp::new(&m, &image, NopHooks, BasicRuntime::strict());
        interp.run_main().unwrap();
        assert_eq!(
            String::from_utf8_lossy(&interp.rt.take_output()),
            String::from_utf8_lossy(&reference_output(&p))
        );
    }

    #[test]
    fn padding_math() {
        assert_eq!(padded_len(0), 64);
        assert_eq!(padded_len(55), 64);
        assert_eq!(padded_len(56), 128);
        assert_eq!(padded_len(120), 192);
    }
}
