//! The `swaptions` kernel (PARSEC), sequential version of the `worker`
//! hot loop.
//!
//! Each iteration prices one swaption by simulating rate paths over a
//! *linked matrix* (an array of row pointers, as in the HJM code): the
//! matrix, its rows, and two scratch vectors are dynamically allocated and
//! freed within the iteration (the paper privatizes 17 objects, 15 of
//! them short-lived). Results go into a buffer reached through a pointer,
//! and an "in-use" flag on a reused scratch structure carries a
//! value-predictable flow dependence — matching Table 3's
//! "Value, Control" extras for swaptions.

use crate::util::{for_loop, if_then, Xorshift};
use privateer_ir::builder::FunctionBuilder;
use privateer_ir::{CmpOp, FuncId, GlobalInit, Module, Type, Value};

/// Kernel parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Number of swaptions (hot-loop iterations).
    pub swaptions: usize,
    /// Simulated paths per swaption.
    pub trials: usize,
    /// Steps per path.
    pub steps: usize,
    /// Input seed.
    pub seed: u64,
}

impl Params {
    /// Train scale.
    pub fn train() -> Params {
        Params {
            swaptions: 24,
            trials: 12,
            steps: 16,
            seed: 51,
        }
    }

    /// Ref scale.
    pub fn reference() -> Params {
        Params {
            swaptions: 48,
            trials: 16,
            steps: 24,
            seed: 52,
        }
    }
}

const FIX: f64 = 1_000_000.0;

fn gen_inputs(p: &Params) -> (Vec<f64>, Vec<f64>) {
    let mut rng = Xorshift(p.seed);
    let strike: Vec<f64> = (0..p.swaptions)
        .map(|_| 0.02 + 0.06 * rng.unit_f64())
        .collect();
    let vol: Vec<f64> = (0..p.swaptions)
        .map(|_| 0.05 + 0.2 * rng.unit_f64())
        .collect();
    (strike, vol)
}

/// The per-(swaption, trial, step) pseudo-random increment, shared by the
/// IR build and the native reference: a splitmix-style integer hash mapped
/// into [-1, 1) with exact `i64` → `f64` conversion.
fn shock(sw: i64, t: i64, s: i64) -> f64 {
    let mut x = (sw.wrapping_mul(1_000_003) ^ t.wrapping_mul(10_007) ^ s)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15u64 as i64);
    x ^= (x as u64 >> 31) as i64;
    let lo = x & 0xF_FFFF; // 20 bits
    (lo as f64 / 524_288.0) - 1.0
}

/// Build the IR program.
#[allow(clippy::too_many_lines)]
pub fn build(p: &Params) -> Module {
    let nsw = p.swaptions as i64;
    let ntr = p.trials as i64;
    let nst = p.steps as i64;
    let (strike, vol) = gen_inputs(p);
    let mut m = Module::new("swaptions");

    let g_strike = m.add_global_init("strike", (p.swaptions * 8) as u64, GlobalInit::F64s(strike));
    let g_vol = m.add_global_init("vol", (p.swaptions * 8) as u64, GlobalInit::F64s(vol));
    let g_results_ptr = m.add_global("results_ptr", 8);
    let g_flag = m.add_global("scratch_in_use", 8);

    // The results buffer is allocated elsewhere.
    let alloc_results = FuncId::new(0);
    {
        let mut b = FunctionBuilder::new("alloc_results", vec![], None);
        let buf = b.malloc(Value::const_i64(nsw * 8));
        b.store(Type::Ptr, buf, Value::Global(g_results_ptr));
        b.ret(None);
        m.add_function(b.finish());
    }

    {
        let mut b = FunctionBuilder::new("main", vec![], None);
        b.call(alloc_results, vec![], None);
        for_loop(
            &mut b,
            Value::const_i64(0),
            Value::const_i64(nsw),
            |b, sw| {
                // Value-predictable flow: the scratch structure must be free.
                let flag = b.load(Type::I64, Value::Global(g_flag));
                let busy = b.icmp(CmpOp::Ne, flag, Value::const_i64(0));
                if_then(b, busy, |b| {
                    // Never taken: control speculation removes this block.
                    b.print_i64(Value::const_i64(-99));
                });
                b.store(Type::I64, Value::const_i64(1), Value::Global(g_flag));

                let kslot = b.gep(Value::Global(g_strike), sw, 8, 0);
                let k = b.load(Type::F64, kslot);
                let vslot = b.gep(Value::Global(g_vol), sw, 8, 0);
                let v = b.load(Type::F64, vslot);

                // Linked matrix: rows of simulated forward rates.
                let mat = b.malloc(Value::const_i64(ntr * 8));
                for_loop(b, Value::const_i64(0), Value::const_i64(ntr), |b, t| {
                    let row = b.malloc(Value::const_i64(nst * 8));
                    let slot = b.gep(mat, t, 8, 0);
                    b.store(Type::Ptr, row, slot);
                    // Path: rate[0] = k; rate[s] = rate[s-1] + v·shock.
                    let first = b.gep(row, Value::const_i64(0), 8, 0);
                    b.store(Type::F64, k, first);
                    for_loop(b, Value::const_i64(1), Value::const_i64(nst), |b, s| {
                        // shock(sw, t, s) recomputed in IR arithmetic.
                        let a1 = b.mul(Type::I64, sw, Value::const_i64(1_000_003));
                        let a2 = b.mul(Type::I64, t, Value::const_i64(10_007));
                        let x0 = b.bin(privateer_ir::BinOp::Xor, Type::I64, a1, a2);
                        let x1 = b.bin(privateer_ir::BinOp::Xor, Type::I64, x0, s);
                        let x2 = b.mul(
                            Type::I64,
                            x1,
                            Value::const_i64(0x9e37_79b9_7f4a_7c15u64 as i64),
                        );
                        let hi = b.bin(
                            privateer_ir::BinOp::LShr,
                            Type::I64,
                            x2,
                            Value::const_i64(31),
                        );
                        let x3 = b.bin(privateer_ir::BinOp::Xor, Type::I64, x2, hi);
                        let lo = b.bin(
                            privateer_ir::BinOp::And,
                            Type::I64,
                            x3,
                            Value::const_i64(0xF_FFFF),
                        );
                        let lf = b.sitofp(lo);
                        let unit = b.fdiv(lf, Value::const_f64(524_288.0));
                        let sh = b.fsub(unit, Value::const_f64(1.0));
                        let vs = b.fmul(v, sh);
                        let prev = b.sub(Type::I64, s, Value::const_i64(1));
                        let pslot = b.gep(row, prev, 8, 0);
                        let pv = b.load(Type::F64, pslot);
                        let nv = b.fadd(pv, vs);
                        let slot = b.gep(row, s, 8, 0);
                        b.store(Type::F64, nv, slot);
                    });
                });

                // Scratch vectors (more short-lived objects, as in the HJM
                // worker).
                let discount = b.malloc(Value::const_i64(nst * 8));
                for_loop(b, Value::const_i64(0), Value::const_i64(nst), |b, s| {
                    let sf = b.sitofp(s);
                    let sc = b.fmul(sf, Value::const_f64(0.004)); // flat short rate
                    let neg = b.fsub(Value::const_f64(0.0), sc);
                    let d = b
                        .intrinsic(privateer_ir::Intrinsic::Exp, vec![neg])
                        .unwrap();
                    let slot = b.gep(discount, s, 8, 0);
                    b.store(Type::F64, d, slot);
                });
                let payoff_buf = b.malloc(Value::const_i64(ntr * 8));

                // Payoff per trial: discounted positive excess over the strike
                // at the final step.
                for_loop(b, Value::const_i64(0), Value::const_i64(ntr), |b, t| {
                    let rslot = b.gep(mat, t, 8, 0);
                    let row = b.load(Type::Ptr, rslot);
                    let last = b.gep(row, Value::const_i64(nst - 1), 8, 0);
                    let rate = b.load(Type::F64, last);
                    let ex = b.fsub(rate, k);
                    let pos = b.fcmp(CmpOp::Gt, ex, Value::const_f64(0.0));
                    let clamped = b.select(Type::F64, pos, ex, Value::const_f64(0.0));
                    let dslot = b.gep(discount, Value::const_i64(nst - 1), 8, 0);
                    let d = b.load(Type::F64, dslot);
                    let pay = b.fmul(clamped, d);
                    let ps = b.gep(payoff_buf, t, 8, 0);
                    b.store(Type::F64, pay, ps);
                });

                // Mean payoff (sequential sum inside the iteration), stored as
                // fixed-point through the results pointer.
                let acc_cell = b.gep(payoff_buf, Value::const_i64(0), 8, 0);
                let first = b.load(Type::F64, acc_cell);
                let _ = first;
                let sum0 = Value::const_f64(0.0);
                // SSA summation loop.
                let entry = b.current_block();
                let header = b.new_block();
                let body_bb = b.new_block();
                let exit = b.new_block();
                b.br(header);
                b.switch_to(header);
                let (t, t_phi) = b.phi(Type::I64);
                let (sum, sum_phi) = b.phi(Type::F64);
                b.add_phi_incoming(t_phi, entry, Value::const_i64(0));
                b.add_phi_incoming(sum_phi, entry, sum0);
                let c = b.icmp(CmpOp::Lt, t, Value::const_i64(ntr));
                b.cond_br(c, body_bb, exit);
                b.switch_to(body_bb);
                let ps = b.gep(payoff_buf, t, 8, 0);
                let pv = b.load(Type::F64, ps);
                let sum2 = b.fadd(sum, pv);
                let t2 = b.add(Type::I64, t, Value::const_i64(1));
                let latch = b.current_block();
                b.add_phi_incoming(t_phi, latch, t2);
                b.add_phi_incoming(sum_phi, latch, sum2);
                b.br(header);
                b.switch_to(exit);
                let mean = b.fdiv(sum, Value::const_f64(ntr as f64));
                let scaled = b.fmul(mean, Value::const_f64(FIX));
                let fixp = b.fptosi(scaled, Type::I64);
                let rp = b.load(Type::Ptr, Value::Global(g_results_ptr));
                let rslot = b.gep(rp, sw, 8, 0);
                b.store(Type::I64, fixp, rslot);

                // Free the linked matrix and scratch.
                for_loop(b, Value::const_i64(0), Value::const_i64(ntr), |b, t| {
                    let rslot = b.gep(mat, t, 8, 0);
                    let row = b.load(Type::Ptr, rslot);
                    b.free(row);
                });
                b.free(mat);
                b.free(discount);
                b.free(payoff_buf);

                // Release the scratch structure: the flag returns to 0 —
                // upholding the value prediction.
                b.store(Type::I64, Value::const_i64(0), Value::Global(g_flag));
            },
        );

        // Report all prices.
        let rp = b.load(Type::Ptr, Value::Global(g_results_ptr));
        for_loop(
            &mut b,
            Value::const_i64(0),
            Value::const_i64(nsw),
            |b, sw| {
                let slot = b.gep(rp, sw, 8, 0);
                let v = b.load(Type::I64, slot);
                b.print_i64(v);
            },
        );
        b.ret(None);
        m.add_function(b.finish());
    }
    privateer_ir::verify::verify_module(&m).expect("swaptions module is well-formed");
    m
}

/// The expected output, computed natively with matching operation order.
pub fn reference_output(p: &Params) -> Vec<u8> {
    let (strike, vol) = gen_inputs(p);
    let mut out = Vec::new();
    let mut results = vec![0i64; p.swaptions];
    for sw in 0..p.swaptions {
        let k = strike[sw];
        let v = vol[sw];
        let mut rates = vec![vec![0.0f64; p.steps]; p.trials];
        for (t, row) in rates.iter_mut().enumerate() {
            row[0] = k;
            for s in 1..p.steps {
                row[s] = row[s - 1] + v * shock(sw as i64, t as i64, s as i64);
            }
        }
        let discount: Vec<f64> = (0..p.steps)
            .map(|s| (0.0 - (s as f64) * 0.004).exp())
            .collect();
        let mut sum = 0.0f64;
        for row in rates.iter() {
            let ex = row[p.steps - 1] - k;
            let clamped = if ex > 0.0 { ex } else { 0.0 };
            sum += clamped * discount[p.steps - 1];
        }
        let mean = sum / p.trials as f64;
        results[sw] = (mean * FIX) as i64;
    }
    for r in results {
        out.extend(format!("{r}\n").into_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use privateer_vm::{load_module, BasicRuntime, Interp, NopHooks};

    #[test]
    fn sequential_matches_reference() {
        let p = Params {
            swaptions: 8,
            trials: 5,
            steps: 7,
            seed: 6,
        };
        let m = build(&p);
        let image = load_module(&m);
        let mut interp = Interp::new(&m, &image, NopHooks, BasicRuntime::strict());
        interp.run_main().unwrap();
        assert_eq!(
            String::from_utf8_lossy(&interp.rt.take_output()),
            String::from_utf8_lossy(&reference_output(&p))
        );
    }

    #[test]
    fn some_payoffs_are_positive() {
        let p = Params::train();
        let out = String::from_utf8(reference_output(&p)).unwrap();
        let vals: Vec<i64> = out.lines().map(|l| l.parse().unwrap()).collect();
        assert!(vals.iter().any(|&v| v > 0), "{vals:?}");
        assert_eq!(vals.len(), p.swaptions);
    }
}
