//! Shared IR-construction helpers for the benchmark kernels.

use privateer_ir::builder::FunctionBuilder;
use privateer_ir::{BlockId, CmpOp, Type, Value};

/// Emit a canonical counted loop `for iv in lo..hi (step 1)`.
///
/// `body` receives the builder positioned at the first body block and the
/// induction value; it must leave the builder positioned at the block that
/// falls through to the loop latch (it may create inner control flow).
/// Returns the exit block, where the builder is positioned afterwards.
pub fn for_loop(
    b: &mut FunctionBuilder,
    lo: Value,
    hi: Value,
    body: impl FnOnce(&mut FunctionBuilder, Value),
) -> BlockId {
    let preheader = b.current_block();
    let header = b.new_block();
    let body_bb = b.new_block();
    let exit = b.new_block();
    b.br(header);
    b.switch_to(header);
    let (iv, phi) = b.phi(Type::I64);
    b.add_phi_incoming(phi, preheader, lo);
    let c = b.icmp(CmpOp::Lt, iv, hi);
    b.cond_br(c, body_bb, exit);
    b.switch_to(body_bb);
    body(b, iv);
    let latch = b.current_block();
    let next = b.add(Type::I64, iv, Value::const_i64(1));
    b.add_phi_incoming(phi, latch, next);
    b.br(header);
    b.switch_to(exit);
    exit
}

/// Emit `if cond { then }` (no else). `then` must leave the builder at a
/// block that falls through; control rejoins afterwards.
pub fn if_then(b: &mut FunctionBuilder, cond: Value, then: impl FnOnce(&mut FunctionBuilder)) {
    let then_bb = b.new_block();
    let join = b.new_block();
    b.cond_br(cond, then_bb, join);
    b.switch_to(then_bb);
    then(b);
    b.br(join);
    b.switch_to(join);
}

/// Emit `if cond { then } else { els }`.
pub fn if_then_else(
    b: &mut FunctionBuilder,
    cond: Value,
    then: impl FnOnce(&mut FunctionBuilder),
    els: impl FnOnce(&mut FunctionBuilder),
) {
    let then_bb = b.new_block();
    let else_bb = b.new_block();
    let join = b.new_block();
    b.cond_br(cond, then_bb, else_bb);
    b.switch_to(then_bb);
    then(b);
    b.br(join);
    b.switch_to(else_bb);
    els(b);
    b.br(join);
    b.switch_to(join);
}

/// A tiny deterministic generator for workload inputs (same sequence in
/// the IR program's baked globals and the native reference).
#[derive(Debug, Clone)]
pub struct Xorshift(pub u64);

impl Xorshift {
    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in `0..bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privateer_ir::{Module, Value};
    use privateer_vm::{load_module, BasicRuntime, Interp, NopHooks};

    #[test]
    fn for_loop_and_if_then_run() {
        let mut m = Module::new("u");
        let g = m.add_global("sum", 8);
        let mut b = FunctionBuilder::new("main", vec![], None);
        for_loop(&mut b, Value::const_i64(0), Value::const_i64(10), |b, i| {
            // if i % 2 == 0 { sum += i }
            let r = b.bin(privateer_ir::BinOp::SRem, Type::I64, i, Value::const_i64(2));
            let even = b.icmp(CmpOp::Eq, r, Value::const_i64(0));
            if_then(b, even, |b| {
                let s = b.load(Type::I64, Value::Global(g));
                let s2 = b.add(Type::I64, s, i);
                b.store(Type::I64, s2, Value::Global(g));
            });
        });
        let v = b.load(Type::I64, Value::Global(g));
        b.print_i64(v);
        b.ret(None);
        m.add_function(b.finish());
        privateer_ir::verify::verify_module(&m).unwrap();
        let image = load_module(&m);
        let mut i = Interp::new(&m, &image, NopHooks, BasicRuntime::strict());
        i.run_main().unwrap();
        assert_eq!(i.rt.take_output(), b"20\n"); // 0+2+4+6+8
    }

    #[test]
    fn nested_for_loops() {
        let mut m = Module::new("n");
        let g = m.add_global("acc", 8);
        let mut b = FunctionBuilder::new("main", vec![], None);
        for_loop(&mut b, Value::const_i64(0), Value::const_i64(4), |b, _| {
            for_loop(b, Value::const_i64(0), Value::const_i64(4), |b, _| {
                let s = b.load(Type::I64, Value::Global(g));
                let s2 = b.add(Type::I64, s, Value::const_i64(1));
                b.store(Type::I64, s2, Value::Global(g));
            });
        });
        let v = b.load(Type::I64, Value::Global(g));
        b.print_i64(v);
        b.ret(None);
        m.add_function(b.finish());
        privateer_ir::verify::verify_module(&m).unwrap();
        let image = load_module(&m);
        let mut i = Interp::new(&m, &image, NopHooks, BasicRuntime::strict());
        i.run_main().unwrap();
        assert_eq!(i.rt.take_output(), b"16\n");
    }

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = Xorshift(42);
        let mut b = Xorshift(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let f = Xorshift(7).unit_f64();
        assert!((0.0..1.0).contains(&f));
    }
}
