//! The paper's motivating example end to end: dijkstra's reused work queue
//! and cost table, privatized and value-predicted automatically.
//!
//! Run with: `cargo run --release -p privateer-bench --example dijkstra_speedup`

use privateer_bench::{run_privateer, run_sequential};
use privateer_workloads::dijkstra;

fn main() {
    let params = dijkstra::Params { n: 64, seed: 8 };
    let module = dijkstra::build(&params);
    let seq = run_sequential(&module);
    assert_eq!(seq.out, dijkstra::reference_output(&params));
    println!(
        "sequential: {} instructions, {:?} wall",
        seq.insts, seq.wall
    );

    for workers in [1, 2, 4, 8, 16, 24] {
        let par = run_privateer(&module, workers, 0.0);
        assert_eq!(par.out, seq.out);
        let report = &par.reports[0];
        if workers == 1 {
            println!(
                "heap assignment: {} read-only / {} private / {} short-lived; value prediction: {}",
                report.heap_counts[0],
                report.heap_counts[1],
                report.heap_counts[3],
                report.value_predicted
            );
        }
        println!(
            "{workers:>2} workers: simulated speedup {:.2}x ({} checkpoints, {} private bytes validated)",
            seq.insts as f64 / par.sim_time() as f64,
            par.stats.checkpoints,
            par.stats.priv_read_bytes + par.stats.priv_write_bytes,
        );
    }
}
