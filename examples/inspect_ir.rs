//! Inspect what the Privateer compiler actually does: print the textual IR
//! of dijkstra's queue operations before and after the transformation —
//! heap-retargeted allocation, separation checks, privacy checks, and the
//! outlined speculative body with value-prediction re-materialization.
//!
//! Run with: `cargo run --release -p privateer-bench --example inspect_ir`

use privateer::pipeline::{privatize, PipelineConfig};
use privateer_ir::printer::print_function;
use privateer_workloads::dijkstra;

fn main() {
    let params = dijkstra::Params { n: 12, seed: 3 };
    let module = dijkstra::build(&params);

    let enq = module.func_by_name("enqueue").unwrap();
    println!(
        "==== enqueue, before ====\n{}",
        print_function(&module, module.func(enq))
    );

    let result = privatize(&module, &PipelineConfig::default()).unwrap();
    let tm = &result.module;
    let enq = tm.func_by_name("enqueue").unwrap();
    println!("==== enqueue, after (checks in grey in the paper's Fig. 2b) ====");
    println!("{}", print_function(tm, tm.func(enq)));

    let body = tm.plans[0].body;
    println!("==== outlined speculative body (head) ====");
    let text = print_function(tm, tm.func(body));
    for line in text.lines().take(18) {
        println!("{line}");
    }
    println!(
        "  ... ({} more lines)",
        text.lines().count().saturating_sub(18)
    );

    println!("\nglobals and their logical heaps:");
    for g in &tm.globals {
        println!(
            "  {:<12} {:>6} bytes  heap: {}",
            g.name,
            g.size,
            g.heap.map(|h| h.to_string()).unwrap_or_else(|| "-".into())
        );
    }
}
