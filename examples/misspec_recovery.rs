//! Watch the Figure 5 timeline: checkpoints commit, a misspeculation is
//! detected, the engine recovers sequentially and resumes parallel
//! execution — with the program's output still byte-identical.
//!
//! Run with: `cargo run --release -p privateer-bench --example misspec_recovery`

use privateer::pipeline::{privatize, PipelineConfig};
use privateer_runtime::{EngineConfig, EngineEvent, MainRuntime};
use privateer_vm::{load_module, Interp, NopHooks};
use privateer_workloads::md5;

fn main() {
    let params = md5::Params {
        messages: 48,
        msg_len: 80,
        seed: 17,
    };
    let module = md5::build(&params);
    let expected = md5::reference_output(&params);

    let result = privatize(&module, &PipelineConfig::default()).unwrap();
    let image = load_module(&result.module);
    let cfg = EngineConfig {
        workers: 4,
        checkpoint_period: 8,
        inject_rate: 0.08, // force misspeculations
        inject_seed: 1234,
        ..EngineConfig::default()
    };
    let mut interp = Interp::new(
        &result.module,
        &image,
        NopHooks,
        MainRuntime::new(&image, cfg),
    );
    interp.run_main().unwrap();
    assert_eq!(
        interp.rt.take_output(),
        expected,
        "output survives recovery"
    );

    println!("execution timeline (cf. the paper's Figure 5):");
    for event in &interp.rt.events {
        match &event.event {
            EngineEvent::Invoke { lo, hi } => {
                println!("  invoke parallel region over iterations {lo}..{hi}")
            }
            EngineEvent::CheckpointCommitted { period, base, end } => {
                println!("    checkpoint {period} committed (iterations {base}..{end})")
            }
            EngineEvent::MisspecDetected { iter, kind } => {
                println!("    !! misspeculation ({kind}) at iteration {iter}")
            }
            EngineEvent::Recovery { from, through } => {
                println!("    sequential recovery of iterations {from}..={through}")
            }
            EngineEvent::ParallelResumed { at } => {
                println!("    parallel execution resumed at {at}")
            }
            EngineEvent::InvokeDone => println!("  invocation complete"),
        }
    }
    println!(
        "\n{} misspeculations, {} iterations re-executed sequentially, output identical.",
        interp.rt.stats.misspecs, interp.rt.stats.recovered_iters
    );
}
