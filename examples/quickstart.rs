//! Quickstart: build a loop that reuses a data structure, let Privateer
//! privatize it automatically, and run it in parallel.
//!
//! Run with: `cargo run --release -p privateer-bench --example quickstart`

use privateer::pipeline::{privatize, PipelineConfig};
use privateer_ir::builder::FunctionBuilder;
use privateer_ir::{CmpOp, Module, Type, Value};
use privateer_runtime::{EngineConfig, MainRuntime};
use privateer_vm::{load_module, BasicRuntime, Interp, NopHooks};

fn main() {
    // A program in the paper's Figure 1 spirit: every outer iteration
    // re-initializes and then uses a shared scratch table, creating false
    // dependences between all iterations.
    let mut module = Module::new("quickstart");
    let table = module.add_global("scratch_table", 64 * 8);

    let mut b = FunctionBuilder::new("main", vec![], None);
    let pre = b.current_block();
    let header = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    b.br(header);
    b.switch_to(header);
    let (i, i_phi) = b.phi(Type::I64);
    b.add_phi_incoming(i_phi, pre, Value::const_i64(0));
    let c = b.icmp(CmpOp::Lt, i, Value::const_i64(200));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    // scratch[j] = i + j for all j, then print scratch[i % 64].
    let inner_pre = b.current_block();
    let ih = b.new_block();
    let ib = b.new_block();
    let iexit = b.new_block();
    b.br(ih);
    b.switch_to(ih);
    let (j, j_phi) = b.phi(Type::I64);
    b.add_phi_incoming(j_phi, inner_pre, Value::const_i64(0));
    let jc = b.icmp(CmpOp::Lt, j, Value::const_i64(64));
    b.cond_br(jc, ib, iexit);
    b.switch_to(ib);
    let v = b.add(Type::I64, i, j);
    let slot = b.gep(Value::Global(table), j, 8, 0);
    b.store(Type::I64, v, slot);
    let j2 = b.add(Type::I64, j, Value::const_i64(1));
    b.add_phi_incoming(j_phi, ib, j2);
    b.br(ih);
    b.switch_to(iexit);
    let idx = b.bin(
        privateer_ir::BinOp::SRem,
        Type::I64,
        i,
        Value::const_i64(64),
    );
    let rslot = b.gep(Value::Global(table), idx, 8, 0);
    let r = b.load(Type::I64, rslot);
    b.print_i64(r);
    let i2 = b.add(Type::I64, i, Value::const_i64(1));
    let latch = b.current_block();
    b.add_phi_incoming(i_phi, latch, i2);
    b.br(header);
    b.switch_to(exit);
    b.ret(None);
    module.add_function(b.finish());

    // Sequential reference run.
    let image = load_module(&module);
    let mut seq = Interp::new(&module, &image, NopHooks, BasicRuntime::strict());
    seq.run_main().unwrap();
    let expected = seq.rt.take_output();
    println!("sequential executed {} instructions", seq.stats.insts);

    // Fully automatic speculative privatization.
    let result = privatize(&module, &PipelineConfig::default()).unwrap();
    let report = &result.reports[0];
    println!(
        "selected hot loop in `{}`: {} private, {} read-only, {} short-lived objects",
        report.function, report.heap_counts[1], report.heap_counts[0], report.heap_counts[3]
    );

    // Parallel execution.
    let image = load_module(&result.module);
    let cfg = EngineConfig {
        workers: 8,
        ..EngineConfig::default()
    };
    let mut par = Interp::new(
        &result.module,
        &image,
        NopHooks,
        MainRuntime::new(&image, cfg),
    );
    par.run_main().unwrap();
    let out = par.rt.take_output();
    assert_eq!(
        out, expected,
        "parallel output must equal sequential output"
    );
    let sim = par.stats.insts + par.rt.stats.sim.total;
    println!(
        "parallel output identical; simulated speedup at 8 workers: {:.2}x ({} checkpoints, {} misspeculations)",
        seq.stats.insts as f64 / sim as f64,
        par.rt.stats.checkpoints,
        par.rt.stats.misspecs,
    );
}
