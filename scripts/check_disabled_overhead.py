#!/usr/bin/env python3
"""Enforce the telemetry disabled-overhead budget from bench output.

Reads criterion-style output on stdin (or a file given as argv[1]), finds
every `telemetry_disabled_overhead_64B/{disabled,compiled_out}` line, and
fails if `disabled` exceeds `compiled_out` by more than the budget
(default 3%, override with argv[2]).

Each side is summarized by its best (minimum) per-iteration time across
all reported `[min median max]` triples — feed the output of several
bench runs to squeeze out scheduler noise; the minimum is what the code
costs when the machine isn't interfering.

See docs/observability.md ("The disabled-overhead contract").
"""

import re
import sys

UNITS = {"ns": 1.0, "µs": 1e3, "us": 1e3, "ms": 1e6, "s": 1e9}
LINE = re.compile(
    r"telemetry_disabled_overhead_64B/(\w+)\s+time:\s+\["
    r"([\d.]+) (\S+) [\d.]+ \S+ [\d.]+ \S+\]"
)


def best_ns(text, which):
    lows = [
        float(m.group(2)) * UNITS[m.group(3)]
        for m in LINE.finditer(text)
        if m.group(1) == which
    ]
    if not lows:
        sys.exit(f"error: no telemetry_disabled_overhead_64B/{which} line found")
    return min(lows)


def main():
    text = open(sys.argv[1]).read() if len(sys.argv) > 1 else sys.stdin.read()
    budget = float(sys.argv[2]) if len(sys.argv) > 2 else 0.03
    disabled = best_ns(text, "disabled")
    baseline = best_ns(text, "compiled_out")
    overhead = disabled / baseline - 1.0
    print(
        f"disabled {disabled:.1f} ns vs compiled-out {baseline:.1f} ns: "
        f"{overhead:+.2%} (budget {budget:+.0%})"
    )
    if overhead > budget:
        sys.exit("error: disabled-telemetry overhead exceeds budget")


if __name__ == "__main__":
    main()
