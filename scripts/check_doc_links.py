#!/usr/bin/env python3
"""Verify that relative markdown links in the doc layer resolve.

Usage: check_doc_links.py [ROOT]

Scans README.md, DESIGN.md and docs/*.md (relative to ROOT, default the
repository root inferred from this script's location) for inline
markdown links `[text](target)`. Every relative target must exist on
disk, resolved against the file the link appears in; `#anchors` are
stripped first. Absolute URLs (http/https/mailto) and pure in-page
anchors are skipped.
"""

import pathlib
import re
import sys

# Inline links only; reference-style links are not used in this repo.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files(root: pathlib.Path):
    for name in ("README.md", "DESIGN.md"):
        p = root / name
        if p.exists():
            yield p
    yield from sorted((root / "docs").glob("*.md"))


def main():
    root = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else (
        pathlib.Path(__file__).resolve().parent.parent
    )
    checked = 0
    broken = []
    for md in doc_files(root):
        for lineno, line in enumerate(md.read_text().splitlines(), start=1):
            for target in LINK.findall(line):
                if target.startswith(SKIP_PREFIXES):
                    continue
                rel = target.split("#", 1)[0]
                if not rel:
                    continue
                checked += 1
                if not (md.parent / rel).exists():
                    broken.append(f"{md.relative_to(root)}:{lineno}: {target}")
    if broken:
        sys.exit("error: broken relative links:\n  " + "\n  ".join(broken))
    print(f"ok: {checked} relative links resolve")


if __name__ == "__main__":
    main()
