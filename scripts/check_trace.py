#!/usr/bin/env python3
"""Validate a privtrace Chrome trace_event export.

Usage: check_trace.py TRACE.json WORKERS

Checks that the file is well-formed JSON in the Chrome trace_event
envelope, names one track per worker plus the engine, and carries at
least one complete ("ph": "X") span per track.
"""

import json
import sys


def main():
    path, workers = sys.argv[1], int(sys.argv[2])
    doc = json.load(open(path))
    events = doc["traceEvents"]
    names = {
        e["args"]["name"]: e["tid"]
        for e in events
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    }
    expected = {"engine"} | {f"worker {w}" for w in range(workers)}
    missing = expected - names.keys()
    if missing:
        sys.exit(f"error: missing tracks {sorted(missing)} (have {sorted(names)})")
    spans_by_tid = {}
    for e in events:
        if e.get("ph") == "X":
            assert e["dur"] >= 0 and e["ts"] >= 0, e
            spans_by_tid.setdefault(e["tid"], 0)
            spans_by_tid[e["tid"]] += 1
    idle = [n for n, tid in names.items() if tid not in spans_by_tid]
    if idle:
        sys.exit(f"error: tracks with no spans: {sorted(idle)}")
    print(
        f"ok: {len(events)} events, {len(names)} tracks, "
        f"{sum(spans_by_tid.values())} spans"
    )


if __name__ == "__main__":
    main()
