#!/bin/sh
# Regenerate every checked-in evaluation output under results/.
set -e
cd "$(dirname "$0")/.."
mkdir -p results
for bin in fig6 fig7 fig8 fig9 table1 table3 ablations; do
    echo "== $bin"
    cargo run --release -q -p privateer-bench --bin "$bin" > "results/$bin.txt"
done
echo "done; see results/"
