#!/usr/bin/env bash
# Regenerate every checked-in evaluation output under results/.
set -euo pipefail

usage() {
    cat <<'EOF'
usage: scripts/regen_results.sh [--help]

Regenerates results/{fig6,fig7,fig8,fig9,table1,table3,ablations}.txt by
running the corresponding privateer-bench binaries in release mode.

Run `cargo build --release -p privateer-bench` first (the script refuses
to start if the release binaries are missing, rather than triggering a
long implicit rebuild halfway through).
EOF
}

if [[ "${1:-}" == "--help" || "${1:-}" == "-h" ]]; then
    usage
    exit 0
elif [[ $# -gt 0 ]]; then
    echo "error: unknown argument: $1" >&2
    usage >&2
    exit 2
fi

cd "$(dirname "$0")/.."

bins=(fig6 fig7 fig8 fig9 table1 table3 ablations)
for bin in "${bins[@]}"; do
    if [[ ! -x "target/release/$bin" ]]; then
        echo "error: target/release/$bin is missing." >&2
        echo "Build it first: cargo build --release -p privateer-bench" >&2
        exit 1
    fi
done

mkdir -p results
for bin in "${bins[@]}"; do
    echo "== $bin"
    "target/release/$bin" > "results/$bin.txt"
done
echo "done; see results/"
