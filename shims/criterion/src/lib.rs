#![warn(missing_docs)]
//! # criterion (offline shim)
//!
//! A small, dependency-free subset of the `criterion` benchmarking API,
//! used because this repository's build environment has no crates.io
//! access (the workspace `criterion` dependency resolves to this path
//! crate — see the root `Cargo.toml`).
//!
//! Supported surface: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size` and `finish`),
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`BatchSize`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`].
//!
//! Measurement model: each benchmark is warmed up for ~100 ms, then
//! timed over `sample_size` samples whose per-sample iteration count is
//! calibrated from the warm-up. The reported triple is the
//! `[min median max]` of per-iteration sample means, formatted like real
//! criterion's `time: [..]` line so existing tooling that greps the
//! output keeps working.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped between setup and timing; accepted for
/// API compatibility. The shim times per-batch regardless, excluding
/// setup from the measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: large batches.
    SmallInput,
    /// Large inputs: small batches.
    LargeInput,
    /// One setup per timed invocation.
    PerIteration,
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    warmup: Duration,
    samples: usize,
    /// Mean nanoseconds per iteration, one entry per sample.
    sample_means_ns: Vec<f64>,
}

impl Bencher {
    fn new(warmup: Duration, samples: usize) -> Bencher {
        Bencher {
            warmup,
            samples,
            sample_means_ns: Vec::new(),
        }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and calibrate the per-sample iteration count.
        let w0 = Instant::now();
        let mut warm_iters: u64 = 0;
        while w0.elapsed() < self.warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = w0.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        // Aim for ~2 ms per sample so cheap routines amortize timer cost.
        let iters_per_sample = ((2_000_000.0 / per_iter.max(0.5)) as u64).clamp(1, 10_000_000);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64;
            self.sample_means_ns.push(ns / iters_per_sample as f64);
        }
    }

    /// Time `routine` on inputs produced by `setup`, excluding `setup`
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate from a short setup+routine warm-up.
        let w0 = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut routine_ns: u64 = 0;
        while w0.elapsed() < self.warmup {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            routine_ns += t.elapsed().as_nanos() as u64;
            warm_iters += 1;
        }
        let per_iter = routine_ns as f64 / warm_iters.max(1) as f64;
        let batch = ((500_000.0 / per_iter.max(0.5)) as usize).clamp(1, 4096);
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let ns = t0.elapsed().as_nanos() as f64;
            self.sample_means_ns.push(ns / batch as f64);
        }
    }
}

fn report(name: &str, mut means: Vec<f64>) {
    if means.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    means.sort_by(|a, b| a.total_cmp(b));
    let fmt = |ns: f64| -> String {
        if ns < 1_000.0 {
            format!("{ns:.2} ns")
        } else if ns < 1_000_000.0 {
            format!("{:.2} µs", ns / 1_000.0)
        } else if ns < 1_000_000_000.0 {
            format!("{:.2} ms", ns / 1_000_000.0)
        } else {
            format!("{:.2} s", ns / 1_000_000_000.0)
        }
    };
    let lo = means[0];
    let mid = means[means.len() / 2];
    let hi = means[means.len() - 1];
    println!("{name:<50} time:   [{} {} {}]", fmt(lo), fmt(mid), fmt(hi));
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    warmup: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warmup: Duration::from_millis(100),
            sample_size: 30,
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.warmup, self.sample_size);
        f(&mut b);
        report(name, b.sample_means_ns);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and optional settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let mut b = Bencher::new(self.parent.warmup, samples);
        f(&mut b);
        report(&format!("{}/{}", self.name, name), b.sample_means_ns);
        self
    }

    /// Finish the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the given groups (extra harness arguments
/// from `cargo bench` are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut b = Bencher::new(Duration::from_millis(1), 5);
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            n
        });
        assert_eq!(b.sample_means_ns.len(), 5);
        assert!(b.sample_means_ns.iter().all(|&m| m >= 0.0));
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(Duration::from_millis(1), 3);
        b.iter_batched(
            || vec![1u8; 64],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert_eq!(b.sample_means_ns.len(), 3);
    }

    #[test]
    fn group_and_driver_run() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            sample_size: 2,
        };
        c.bench_function("t", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("u", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
    }
}
