#![warn(missing_docs)]
//! # proptest (offline shim)
//!
//! A small, dependency-free, drop-in subset of the `proptest` crate's API,
//! sufficient for this workspace's property-test suites. The build
//! environment for this repository has no access to a crates.io registry,
//! so the workspace `proptest` dependency resolves to this path crate
//! instead (see the root `Cargo.toml`).
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_oneof!`];
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive` and
//!   `boxed`; tuple, integer/float range, [`strategy::Just`] and
//!   string-pattern strategies;
//! * [`arbitrary::any`], [`collection::vec`], [`option::of`].
//!
//! Differences from real proptest: generation is deterministic per test
//! (override with `PROPTEST_SEED`), failing cases are **not shrunk** —
//! the failure message reports the case number and seed so a run can be
//! reproduced exactly.

/// Deterministic pseudo-random generation and per-test configuration.
pub mod test_runner {
    /// Run-time configuration for a [`crate::proptest!`] block.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to execute per test function.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            Config { cases }
        }
    }

    /// A failed property within a test case (produced by the
    /// `prop_assert*` macros).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The splitmix64 generator driving all value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with the given seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n` must be nonzero).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0, "empty range");
            // Multiply-shift bounded sampling; bias is negligible for
            // test-input purposes.
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform boolean.
        pub fn gen_bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// The base seed for a named test: `PROPTEST_SEED` if set, else a
    /// stable hash of the test path (deterministic across runs).
    pub fn base_seed(name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                return v;
            }
        }
        // FNV-1a.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// The [`Strategy`](strategy::Strategy) trait and its combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating random values of an associated type.
    ///
    /// Unlike real proptest there is no value-tree shrinking: a strategy
    /// is simply a deterministic function of the test RNG.
    pub trait Strategy: Clone {
        /// The type of value this strategy generates.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O + Clone,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }

        /// Build a recursive strategy: `self` generates leaves and
        /// `recurse` wraps an inner strategy into a deeper one, applied
        /// `depth` times. The `_desired_size`/`_expected_branch` hints of
        /// real proptest are accepted and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut cur = self.boxed();
            for _ in 0..depth {
                cur = recurse(cur).boxed();
            }
            cur
        }
    }

    /// A type-erased strategy (the result of [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O + Clone,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (see
    /// [`crate::prop_oneof!`]).
    pub struct OneOf<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// A strategy choosing uniformly among `arms`.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<T> Clone for OneOf<T> {
        fn clone(&self) -> Self {
            OneOf {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    /// String-pattern strategies: a `&str` acts as a miniature regex over
    /// the subset `.`  `[a-z0-9_-]` (char classes with ranges), literal
    /// characters and the quantifiers `{m,n}` `{n}` `*` `+` `?`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_pattern(self, rng)
        }
    }
}

/// `any::<T>()` — uniform generation over a whole primitive type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen_bool()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A collection length specification: an exact length or a range, as
    /// in real proptest's `SizeRange`.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange(r)
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange(*r.start()..r.end() + 1)
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` (an exact length or a
    /// range) and whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into().0,
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Bias toward Some, matching real proptest's 3:1 default.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Miniature regex-pattern string generation (backs `&str` strategies).
pub mod string {
    use crate::test_runner::TestRng;

    enum Atom {
        Dot,
        Class(Vec<(char, char)>),
        Lit(char),
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<(char, char)> {
        let mut out = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = chars.next().expect("unterminated character class");
            match c {
                ']' => {
                    if let Some(p) = pending {
                        out.push((p, p));
                    }
                    break;
                }
                '-' if pending.is_some() && chars.peek() != Some(&']') => {
                    let lo = pending.take().expect("checked above");
                    let hi = chars.next().expect("unterminated range");
                    out.push((lo, hi));
                }
                c => {
                    if let Some(p) = pending {
                        out.push((p, p));
                    }
                    pending = Some(c);
                }
            }
        }
        assert!(!out.is_empty(), "empty character class");
        out
    }

    fn parse_reps(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (u32, u32) {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad repetition bound"),
                        n.trim().parse().expect("bad repetition bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        }
    }

    fn sample_dot(rng: &mut TestRng) -> char {
        // Mostly printable ASCII; occasionally a multi-byte scalar so
        // consumers see non-ASCII input too. Never a newline ('.' in a
        // regex does not match '\n').
        const EXOTIC: &[char] = &['λ', 'ß', '中', '🦀', '\u{202e}', '\t'];
        if rng.below(16) == 0 {
            EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
        } else {
            char::from(0x20 + rng.below(0x5f) as u8)
        }
    }

    /// Generate one string matching `pattern` (see the module docs for
    /// the supported subset).
    ///
    /// # Panics
    ///
    /// Panics on syntax outside the supported subset (unterminated
    /// classes or malformed repetitions).
    pub fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Dot,
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => Atom::Lit(chars.next().expect("dangling escape")),
                c => Atom::Lit(c),
            };
            let reps = parse_reps(&mut chars);
            atoms.push((atom, reps));
        }
        let mut out = String::new();
        for (atom, (lo, hi)) in &atoms {
            let n = *lo + rng.below(u64::from(hi - lo) + 1) as u32;
            for _ in 0..n {
                match atom {
                    Atom::Dot => out.push(sample_dot(rng)),
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let (a, b) = ranges[rng.below(ranges.len() as u64) as usize];
                        let span = b as u32 - a as u32 + 1;
                        let c = char::from_u32(a as u32 + rng.below(u64::from(span)) as u32)
                            .unwrap_or(a);
                        out.push(c);
                    }
                }
            }
        }
        out
    }
}

/// The customary glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The crate itself, so `prop::collection::vec` etc. resolve after a
    /// glob import of this prelude.
    pub use crate as prop;
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` running `cases` random cases (the `#[test]`
/// attribute is written by the caller and passes through).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let seed0 = $crate::test_runner::base_seed(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::new(
                        seed0 ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(case) + 1),
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest case {}/{} failed (base seed {seed0:#x}): {e}",
                            case + 1,
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $crate::proptest! {
            #![proptest_config(<$crate::test_runner::Config as ::std::default::Default>::default())]
            $($(#[$meta])* fn $name($($pat in $strat),+) $body)*
        }
    };
}

/// Assert a condition inside a [`proptest!`] body, failing the current
/// case (without panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Uniform choice among several strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_any_are_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let n = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn vec_and_oneof_compose() {
        let strat = prop::collection::vec(
            prop_oneof![Just(1u8), 10u8..20, any::<u8>().prop_map(|b| b | 0x80)],
            2..6,
        );
        let mut rng = crate::test_runner::TestRng::new(9);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn pattern_strings_match_shape() {
        let mut rng = crate::test_runner::TestRng::new(11);
        for _ in 0..200 {
            let s = "[ -~]{0,40}".generate(&mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            let t = "ab[0-9]{2}z?".generate(&mut rng);
            assert!(t.starts_with("ab"));
            let digits: String = t[2..4].to_string();
            assert!(digits.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(any::<u64>(), 0..10);
        let a = strat.generate(&mut crate::test_runner::TestRng::new(42));
        let b = strat.generate(&mut crate::test_runner::TestRng::new(42));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: bindings, mut patterns, assertions.
        #[test]
        fn macro_end_to_end(mut xs in prop::collection::vec(0u32..100, 0..20), flip in any::<bool>()) {
            xs.sort_unstable();
            for w in xs.windows(2) {
                prop_assert!(w[0] <= w[1], "unsorted after sort: {:?}", w);
            }
            if flip {
                prop_assert_eq!(xs.len(), xs.len());
            } else {
                prop_assert_ne!(xs.len() + 1, xs.len());
            }
        }
    }
}
