//! Whole-system integration: run every evaluated kernel through the full
//! Privateer pipeline and the speculative parallel engine; outputs must be
//! byte-identical to the native reference implementations.

use privateer::pipeline::{privatize, PipelineConfig};
use privateer_ir::Module;
use privateer_runtime::{EngineConfig, MainRuntime, SequentialPlanRuntime};
use privateer_vm::{load_module, Interp, NopHooks};
use privateer_workloads::{alvinn, blackscholes, dijkstra, md5, swaptions};

struct Case {
    name: &'static str,
    module: Module,
    expected: Vec<u8>,
    /// Expected per-loop report properties: (value_predicted, does_io,
    /// redux_count).
    value_predicted: bool,
    does_io: bool,
    redux: usize,
}

fn cases() -> Vec<Case> {
    let d = dijkstra::Params { n: 14, seed: 2 };
    let b = blackscholes::Params {
        options: 24,
        runs: 6,
        seed: 3,
    };
    let s = swaptions::Params {
        swaptions: 12,
        trials: 6,
        steps: 8,
        seed: 4,
    };
    let a = alvinn::Params {
        inputs: 8,
        hidden: 6,
        outputs: 3,
        examples: 20,
        epochs: 4,
        seed: 5,
    };
    let m5 = md5::Params {
        messages: 10,
        msg_len: 90,
        seed: 6,
    };
    vec![
        Case {
            name: "dijkstra",
            module: dijkstra::build(&d),
            expected: dijkstra::reference_output(&d),
            value_predicted: true,
            does_io: true,
            redux: 0,
        },
        Case {
            name: "blackscholes",
            module: blackscholes::build(&b),
            expected: blackscholes::reference_output(&b),
            value_predicted: false,
            does_io: false,
            redux: 0,
        },
        Case {
            name: "swaptions",
            module: swaptions::build(&s),
            expected: swaptions::reference_output(&s),
            value_predicted: true,
            does_io: false,
            redux: 0,
        },
        Case {
            name: "alvinn",
            module: alvinn::build(&a),
            expected: alvinn::reference_output(&a),
            value_predicted: false,
            does_io: false,
            redux: 3,
        },
        Case {
            name: "enc-md5",
            module: md5::build(&m5),
            expected: md5::reference_output(&m5),
            value_predicted: false,
            does_io: true,
            redux: 0,
        },
    ]
}

#[test]
fn every_workload_is_privatized_and_parallelized_correctly() {
    for case in cases() {
        let result = privatize(&case.module, &PipelineConfig::default())
            .unwrap_or_else(|e| panic!("[{}] pipeline failed: {e}", case.name));
        assert_eq!(
            result.reports.len(),
            1,
            "[{}] expected one selected hot loop; rejected: {:?}",
            case.name,
            result.rejected
        );
        let report = &result.reports[0];
        assert_eq!(
            report.value_predicted, case.value_predicted,
            "[{}] value prediction mismatch",
            case.name
        );
        assert_eq!(report.does_io, case.does_io, "[{}] I/O mismatch", case.name);
        assert_eq!(
            report.heap_counts[2], case.redux,
            "[{}] reduction count mismatch (report: {report:?})",
            case.name
        );
        assert_eq!(
            report.heap_counts[4], 0,
            "[{}] unrestricted objects",
            case.name
        );

        let tm = &result.module;
        let image = load_module(tm);

        // Sequential semantics preserved.
        let mut interp = Interp::new(tm, &image, NopHooks, SequentialPlanRuntime::new(&image));
        interp.run_main().unwrap();
        assert_eq!(
            String::from_utf8_lossy(&interp.rt.take_output()),
            String::from_utf8_lossy(&case.expected),
            "[{}] sequential transformed output diverged",
            case.name
        );

        // Parallel execution, no misspeculation expected.
        for workers in [2, 4] {
            let cfg = EngineConfig {
                workers,
                checkpoint_period: 5,
                inject_rate: 0.0,
                inject_seed: 0,
                ..EngineConfig::default()
            };
            let mut interp = Interp::new(tm, &image, NopHooks, MainRuntime::new(&image, cfg));
            interp
                .run_main()
                .unwrap_or_else(|e| panic!("[{}] parallel run failed: {e}", case.name));
            assert_eq!(
                String::from_utf8_lossy(&interp.rt.take_output()),
                String::from_utf8_lossy(&case.expected),
                "[{}] parallel output diverged at {workers} workers ({} misspecs)",
                case.name,
                interp.rt.stats.misspecs
            );
            assert_eq!(
                interp.rt.stats.misspecs, 0,
                "[{}] unexpected misspeculation",
                case.name
            );
        }
    }
}

#[test]
fn every_workload_survives_injected_misspeculation() {
    for case in cases() {
        let result = privatize(&case.module, &PipelineConfig::default()).unwrap();
        let image = load_module(&result.module);
        let cfg = EngineConfig {
            workers: 3,
            checkpoint_period: 4,
            inject_rate: 0.3,
            inject_seed: 99,
            ..EngineConfig::default()
        };
        let mut interp = Interp::new(
            &result.module,
            &image,
            NopHooks,
            MainRuntime::new(&image, cfg),
        );
        interp.run_main().unwrap();
        assert_eq!(
            String::from_utf8_lossy(&interp.rt.take_output()),
            String::from_utf8_lossy(&case.expected),
            "[{}] diverged under injected misspeculation",
            case.name
        );
        assert!(
            interp.rt.stats.misspecs > 0,
            "[{}] injection produced no misspeculation",
            case.name
        );
    }
}

#[test]
fn doall_only_baseline_matches_where_applicable() {
    use privateer::baseline::doall_only;
    use privateer_runtime::UncheckedDoallRuntime;
    for case in cases() {
        let result = doall_only(&case.module);
        let image = load_module(&result.module);
        let mut interp = Interp::new(
            &result.module,
            &image,
            NopHooks,
            UncheckedDoallRuntime::new(&image, 4),
        );
        interp.run_main().unwrap_or_else(|e| {
            panic!(
                "[{}] DOALL-only run failed ({} loops): {e}",
                case.name,
                result.parallelized.len()
            )
        });
        assert_eq!(
            String::from_utf8_lossy(&interp.rt.take_output()),
            String::from_utf8_lossy(&case.expected),
            "[{}] DOALL-only output diverged",
            case.name
        );
        match case.name {
            // Static analysis finds the affine inner loops of these two...
            "blackscholes" | "alvinn" => assert!(
                !result.parallelized.is_empty(),
                "[{}] expected a provable inner loop",
                case.name
            ),
            // ...the trivial cost-table reset in dijkstra (the hot loop
            // itself is far beyond static analysis)...
            "dijkstra" => assert!(
                result.parallelized.len() <= 1,
                "[{}] only the init loop is provable, got {:?}",
                case.name,
                result.parallelized
            ),
            // ...and nothing in the other pointer-based programs (Fig. 7).
            _ => assert!(
                result.parallelized.is_empty(),
                "[{}] static analysis should fail here, got {:?}",
                case.name,
                result.parallelized
            ),
        }
    }
}

/// §6: "When we profile these with a third input, the compiler generates
/// identical code" — classification decisions are stable across input
/// seeds for every program.
#[test]
fn classification_is_stable_across_inputs() {
    use privateer_workloads::*;
    let pairs: Vec<(&str, Module, Module)> = vec![
        (
            "dijkstra",
            dijkstra::build(&dijkstra::Params { n: 14, seed: 100 }),
            dijkstra::build(&dijkstra::Params { n: 14, seed: 200 }),
        ),
        (
            "blackscholes",
            blackscholes::build(&blackscholes::Params {
                options: 24,
                runs: 6,
                seed: 100,
            }),
            blackscholes::build(&blackscholes::Params {
                options: 24,
                runs: 6,
                seed: 200,
            }),
        ),
        (
            "swaptions",
            swaptions::build(&swaptions::Params {
                swaptions: 12,
                trials: 6,
                steps: 8,
                seed: 100,
            }),
            swaptions::build(&swaptions::Params {
                swaptions: 12,
                trials: 6,
                steps: 8,
                seed: 200,
            }),
        ),
        (
            "alvinn",
            alvinn::build(&alvinn::Params {
                inputs: 8,
                hidden: 6,
                outputs: 3,
                examples: 20,
                epochs: 4,
                seed: 100,
            }),
            alvinn::build(&alvinn::Params {
                inputs: 8,
                hidden: 6,
                outputs: 3,
                examples: 20,
                epochs: 4,
                seed: 200,
            }),
        ),
        (
            "enc-md5",
            md5::build(&md5::Params {
                messages: 10,
                msg_len: 90,
                seed: 100,
            }),
            md5::build(&md5::Params {
                messages: 10,
                msg_len: 90,
                seed: 200,
            }),
        ),
    ];
    for (name, a, b) in pairs {
        let ra = privatize(&a, &PipelineConfig::default()).unwrap();
        let rb = privatize(&b, &PipelineConfig::default()).unwrap();
        assert_eq!(ra.reports.len(), rb.reports.len(), "[{name}]");
        for (x, y) in ra.reports.iter().zip(&rb.reports) {
            assert_eq!(x.heap_counts, y.heap_counts, "[{name}]");
            assert_eq!(x.value_predicted, y.value_predicted, "[{name}]");
            assert_eq!(x.does_io, y.does_io, "[{name}]");
        }
    }
}
