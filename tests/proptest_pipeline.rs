//! Adversarial end-to-end property: for *arbitrary generated loop
//! programs* — whatever mix of kills, reuse, reductions, short-lived
//! allocation and cross-iteration dependences they contain — the Privateer
//! pipeline either rejects the loop or produces a parallel program whose
//! output is byte-identical to the sequential original, with and without
//! injected misspeculation.

use privateer::pipeline::{privatize, PipelineConfig};
use privateer_ir::builder::FunctionBuilder;
use privateer_ir::{BinOp, CmpOp, GlobalInit, Module, Type, Value};
use privateer_runtime::{EngineConfig, MainRuntime};
use privateer_vm::{load_module, BasicRuntime, Interp, NopHooks};
use proptest::prelude::*;

/// One statement of the generated loop body.
#[derive(Debug, Clone)]
enum Stmt {
    /// `cells[s] = <const or iv>` — a kill.
    Kill(usize, bool),
    /// `cells[d] = cells[s] + iv` — potential cross-iteration flow.
    Combine(usize, usize),
    /// `acc += iv` through the same pointer (a reduction pattern).
    Reduce,
    /// malloc/use/free within the iteration (short-lived).
    Scratch(usize),
    /// print a cell (deferred I/O).
    Print(usize),
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (0usize..6, any::<bool>()).prop_map(|(s, c)| Stmt::Kill(s, c)),
        (0usize..6, 0usize..6).prop_map(|(d, s)| Stmt::Combine(d, s)),
        Just(Stmt::Reduce),
        (0usize..6).prop_map(Stmt::Scratch),
        (0usize..6).prop_map(Stmt::Print),
    ]
}

fn build_program(stmts: &[Stmt]) -> Module {
    let mut m = Module::new("generated-loop");
    let cells = m.add_global_init("cells", 48, GlobalInit::I64s(vec![5; 6]));
    let acc = m.add_global("acc", 8);

    let mut b = FunctionBuilder::new("main", vec![], None);
    let pre = b.current_block();
    let header = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    b.br(header);
    b.switch_to(header);
    let (iv, phi) = b.phi(Type::I64);
    b.add_phi_incoming(phi, pre, Value::const_i64(0));
    let c = b.icmp(CmpOp::Lt, iv, Value::const_i64(24));
    b.cond_br(c, body, exit);
    b.switch_to(body);

    for s in stmts {
        match s {
            Stmt::Kill(slot, use_iv) => {
                let v = if *use_iv { iv } else { Value::const_i64(11) };
                let p = b.gep(Value::Global(cells), Value::const_i64(*slot as i64), 8, 0);
                b.store(Type::I64, v, p);
            }
            Stmt::Combine(d, s) => {
                let ps = b.gep(Value::Global(cells), Value::const_i64(*s as i64), 8, 0);
                let v = b.load(Type::I64, ps);
                let v2 = b.add(Type::I64, v, iv);
                let pd = b.gep(Value::Global(cells), Value::const_i64(*d as i64), 8, 0);
                b.store(Type::I64, v2, pd);
            }
            Stmt::Reduce => {
                let a = b.load(Type::I64, Value::Global(acc));
                let a2 = b.bin(BinOp::Add, Type::I64, a, iv);
                b.store(Type::I64, a2, Value::Global(acc));
            }
            Stmt::Scratch(slot) => {
                let p = b.malloc(Value::const_i64(16));
                let ps = b.gep(Value::Global(cells), Value::const_i64(*slot as i64), 8, 0);
                let v = b.load(Type::I64, ps);
                b.store(Type::I64, v, p);
                let r = b.load(Type::I64, p);
                b.store(Type::I64, r, ps);
                b.free(p);
            }
            Stmt::Print(slot) => {
                let p = b.gep(Value::Global(cells), Value::const_i64(*slot as i64), 8, 0);
                let v = b.load(Type::I64, p);
                b.print_i64(v);
            }
        }
    }

    let next = b.add(Type::I64, iv, Value::const_i64(1));
    let latch = b.current_block();
    b.add_phi_incoming(phi, latch, next);
    b.br(header);
    b.switch_to(exit);
    // Observe the final memory state too.
    for slot in 0..6 {
        let p = b.gep(Value::Global(cells), Value::const_i64(slot), 8, 0);
        let v = b.load(Type::I64, p);
        b.print_i64(v);
    }
    let a = b.load(Type::I64, Value::Global(acc));
    b.print_i64(a);
    b.ret(None);
    m.add_function(b.finish());
    privateer_ir::verify::verify_module(&m).unwrap();
    m
}

fn sequential_output(m: &Module) -> Vec<u8> {
    let image = load_module(m);
    let mut interp = Interp::new(m, &image, NopHooks, BasicRuntime::strict());
    interp.run_main().unwrap();
    interp.rt.take_output()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pipeline_is_sound_on_arbitrary_loops(
        stmts in prop::collection::vec(stmt_strategy(), 1..10),
        workers in 1usize..5,
        inject in prop_oneof![Just(0.0f64), Just(0.15f64)],
    ) {
        let m = build_program(&stmts);
        let expected = sequential_output(&m);

        // The pipeline must never fail outright; loops it cannot handle
        // are rejected and stay sequential.
        let result = privatize(&m, &PipelineConfig::default())
            .unwrap_or_else(|e| panic!("pipeline error on {stmts:?}: {e}"));

        let image = load_module(&result.module);
        let cfg = EngineConfig {
            workers,
            checkpoint_period: 6,
            inject_rate: inject,
            inject_seed: 7,
            ..EngineConfig::default()
        };
        let mut interp = Interp::new(&result.module, &image, NopHooks, MainRuntime::new(&image, cfg));
        interp.run_main().unwrap_or_else(|e| panic!("run failed on {stmts:?}: {e}"));
        let out = interp.rt.take_output();
        prop_assert_eq!(
            String::from_utf8_lossy(&out),
            String::from_utf8_lossy(&expected),
            "stmts {:?}, selected {}, workers {}, inject {}",
            stmts,
            result.reports.len(),
            workers,
            inject
        );
    }
}
