//! Every evaluated workload survives the full textual round trip: print →
//! parse → pipeline → parallel execution, with output identical to the
//! in-memory path (the `emit_ir | privc` flow, as a test).

use privateer::pipeline::{privatize, PipelineConfig};
use privateer_bench::{workloads, Scale};
use privateer_ir::{parser, printer};
use privateer_runtime::{EngineConfig, MainRuntime};
use privateer_vm::{load_module, Interp, NopHooks};

#[test]
fn workloads_round_trip_through_text() {
    for wl in workloads() {
        let module = wl.build(Scale::Train);
        let text = printer::print_module(&module);
        let reparsed =
            parser::parse(&text).unwrap_or_else(|e| panic!("[{}] reparse failed: {e}", wl.name));
        assert_eq!(
            printer::print_module(&reparsed),
            text,
            "[{}] print/parse/print not stable",
            wl.name
        );
        privateer_ir::verify::verify_module(&reparsed).unwrap();

        // The reparsed module goes through the whole pipeline and runs.
        let result = privatize(&reparsed, &PipelineConfig::default())
            .unwrap_or_else(|e| panic!("[{}] pipeline on reparsed module: {e}", wl.name));
        assert_eq!(
            result.reports.len(),
            1,
            "[{}] {:?}",
            wl.name,
            result.rejected
        );
        let image = load_module(&result.module);
        let cfg = EngineConfig {
            workers: 3,
            checkpoint_period: 8,
            inject_rate: 0.0,
            inject_seed: 0,
            ..EngineConfig::default()
        };
        let mut interp = Interp::new(
            &result.module,
            &image,
            NopHooks,
            MainRuntime::new(&image, cfg),
        );
        interp.run_main().unwrap();
        assert_eq!(
            interp.rt.take_output(),
            wl.reference(Scale::Train),
            "[{}] output diverged after the text round trip",
            wl.name
        );
    }
}

#[test]
fn transformed_modules_round_trip_through_text() {
    // The *transformed* module — checks, plans, heap-placed globals —
    // also prints, reparses, and runs identically.
    for wl in workloads().into_iter().take(2) {
        let module = wl.build(Scale::Train);
        let result = privatize(&module, &PipelineConfig::default()).unwrap();
        let text = printer::print_module(&result.module);
        let reparsed = parser::parse(&text)
            .unwrap_or_else(|e| panic!("[{}] reparse of transformed module failed: {e}", wl.name));
        assert_eq!(printer::print_module(&reparsed), text, "[{}]", wl.name);
        assert_eq!(reparsed.plans.len(), result.module.plans.len());

        let image = load_module(&reparsed);
        let cfg = EngineConfig {
            workers: 2,
            checkpoint_period: 8,
            inject_rate: 0.0,
            inject_seed: 0,
            ..EngineConfig::default()
        };
        let mut interp = Interp::new(&reparsed, &image, NopHooks, MainRuntime::new(&image, cfg));
        interp.run_main().unwrap();
        assert_eq!(
            interp.rt.take_output(),
            wl.reference(Scale::Train),
            "[{}] transformed text round trip diverged",
            wl.name
        );
    }
}
